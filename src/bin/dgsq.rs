//! `dgsq` — command-line front end for distributed graph simulation.
//!
//! ```text
//! dgsq generate --family web|citation|tree|community|rmat --nodes N [--edges M] [--labels L] [--seed S]
//!               (--out FILE | --remote ADDR [--sites K] [--partition P])
//! dgsq query    --graph FILE --pattern FILE[,FILE...] [--algorithm auto|NAME] [--sites K]
//!               [--partition hash|bfs|ldg|tree] [--executor virtual|threaded]
//!               [--seed S] [--boolean] [--matches]
//!               [--cache N] [--compress simeq|bisim] [--compress-threshold X]
//!               [--parallel W] [--repeat R] [--updates OPS.txt]
//! dgsq query    --remote ADDR --pattern FILE[,FILE...] [--algorithm NAME] [--boolean]
//!               [--matches] [--repeat R] [--updates OPS.txt]
//! dgsq convert  --in FILE --out FILE --format text|binary
//! dgsq compress --graph FILE [--method simeq|bisim] [--out FILE]   (or --remote ADDR)
//! dgsq stats    --graph FILE                                       (or --remote ADDR)
//! dgsq session  --remote ADDR [--create NAME --graph FILE [--sites K] ...| --drop NAME]
//! dgsq subscribe PATTERN --remote ADDR [--session NAME] [--count N] [--algorithm NAME]
//! dgsq shutdown --remote ADDR
//! dgsq worker   [--listen HOST:PORT]
//! ```
//!
//! Unknown or misspelled `--flags` are rejected against a
//! per-subcommand allowlist (exit status 2, offending flag named) —
//! they used to be collected and silently ignored.
//!
//! **Remote mode**: `--remote ADDR` (`tcp:host:port`, bare
//! `host:port`, or `unix:/path.sock`) points any subcommand at a
//! running `dgsd` daemon instead of doing the work in-process:
//! `query` sends patterns (and `--updates` batches) to the daemon's
//! shared session, `generate` loads the generated graph into the
//! daemon as a fresh session, `compress` reports the daemon session's
//! compressed leg, `stats` prints the served graph/fragmentation
//! summary, and `shutdown` stops the daemon.
//!
//! **Sessions**: a daemon hosts named sessions. `dgsq session` lists,
//! creates (`--create NAME --graph FILE`, with the same
//! sites/partition/cache/compress options as `generate --remote`) and
//! drops them; `--session NAME` on `query`/`stats`/`compress` routes
//! the connection at that session instead of `"default"`, and on
//! `generate --remote` loads the generated graph **as** that named
//! session (creating or replacing it).
//!
//! Graphs and patterns load in either the line-oriented text format
//! of `dgs_graph::io` or its binary twin (magic `DGSB`); `dgsq
//! convert` translates between the two. Binary is the format `dgsd`
//! cold-loads big graphs from.
//!
//! **Socket executor**: `--executor socket` runs the query's dGPM
//! protocol across real OS processes. By default `dgsq` spawns
//! `--workers N` copies of itself in `dgsq worker` mode (each hosting
//! `sites/N` sites) and tears them down afterwards; `--attach
//! HOST:PORT,...` connects to already-running workers (`dgsd --worker`)
//! instead. Message and visit metrics flow back over the wire into
//! the same report shape as the in-process executors.
//!
//! **Live subscriptions** (wire v4): `dgsq subscribe PATTERN --remote
//! ADDR` registers the pattern with the daemon and prints the initial
//! match snapshot, then streams `MATCH_DIFF` pushes — the
//! `(query node, data node)` pairs that entered or left the match set
//! as other connections apply deltas — until `--count N` diffs have
//! arrived (then it unsubscribes cleanly) or the server ends the
//! stream with a typed event (overflow, session dropped, draining).
//! The pattern file is positional, but `--pattern FILE` works too.
//!
//! `--updates OPS.txt` replays a dynamic-graph workload after the
//! initial pass: the file holds `- u v` (delete edge) and `+ u v`
//! (insert edge) lines, `#` comments, and blank lines as **batch
//! separators**. Each batch is absorbed via `SimEngine::apply_delta`
//! (locally or over the wire) — deletion-only batches keep the cached
//! answers current through distributed incremental maintenance,
//! insertions invalidate and re-plan — and the pattern stream is
//! re-run after every batch so the cache-hit and maintenance
//! accounting is visible.

use dgs::core::{Algorithm, CompressionMethod, GraphDelta, SimEngine};
use dgs::graph::{io, Graph, NodeId, Pattern};
use dgs::net::{ExecutorKind, SocketConfig};
use dgs::partition::{bfs_partition, hash_partition, tree_partition, Fragmentation};
use dgs::serve::{DgsClient, ServeAddr, SessionOptions, WireAlgorithm, WirePartitioner};
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::exit;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("dgsq: {msg}");
    exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         dgsq generate --family web|citation|tree|community|rmat --nodes N [--edges M] [--labels L] [--seed S]\n           \
         (--out FILE | --remote ADDR [--sites K] [--partition P])\n  \
         dgsq query --graph FILE --pattern FILE[,FILE...] [--algorithm auto|dgpm|dgpm-nopt|dgpms|dgpmd|dgpmt|match|dishhk|dmes]\n             \
         [--sites K] [--partition hash|bfs|ldg|tree] [--executor virtual|threaded|socket] [--seed S] [--boolean] [--matches]\n             [--workers N | --attach HOST:PORT,...]\n             \
         [--cache N] [--compress simeq|bisim] [--compress-threshold X] [--parallel W] [--repeat R] [--updates OPS.txt]\n  \
         dgsq query --remote ADDR --pattern FILE[,FILE...] [--algorithm NAME] [--boolean] [--matches] [--repeat R] [--updates OPS.txt]\n  \
         dgsq convert --in FILE --out FILE --format text|binary\n  \
         dgsq compress --graph FILE [--method simeq|bisim] [--out FILE]  |  dgsq compress --remote ADDR\n  \
         dgsq stats --graph FILE  |  dgsq stats --remote ADDR [--metrics]\n  \
         dgsq trace --remote ADDR   (dump the daemon's slow-query log)\n  \
         dgsq session --remote ADDR [--create NAME --graph FILE [--sites K] [--partition P] ... | --drop NAME]\n  \
         dgsq subscribe PATTERN --remote ADDR [--session NAME] [--count N] [--algorithm NAME]\n  \
         dgsq shutdown --remote ADDR\n  \
         dgsq worker [--listen HOST:PORT]   (socket-executor worker process)"
    );
    exit(2);
}

/// The flags each subcommand accepts. Anything else is a hard error —
/// a misspelled flag must never be silently ignored.
fn allowed_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "generate" => &[
            "family",
            "nodes",
            "edges",
            "labels",
            "seed",
            "out",
            "remote",
            "sites",
            "partition",
            "cache",
            "compress",
            "compress-threshold",
            "session",
        ],
        "query" => &[
            "graph",
            "pattern",
            "algorithm",
            "sites",
            "partition",
            "executor",
            "seed",
            "boolean",
            "matches",
            "cache",
            "compress",
            "compress-threshold",
            "parallel",
            "repeat",
            "updates",
            "remote",
            "workers",
            "attach",
            "session",
        ],
        "convert" => &["in", "out", "format"],
        "worker" => &["listen"],
        "compress" => &["graph", "method", "out", "remote", "session"],
        "stats" => &["graph", "remote", "session", "metrics"],
        "trace" => &["remote"],
        "session" => &[
            "remote",
            "create",
            "drop",
            "graph",
            "sites",
            "partition",
            "seed",
            "cache",
            "compress",
            "compress-threshold",
        ],
        "subscribe" => &["remote", "pattern", "session", "count", "algorithm"],
        "shutdown" => &["remote"],
        _ => &[],
    }
}

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| fail(&format!("expected a --flag, got '{}'", args[i])));
        // Boolean flags take no value.
        if matches!(key, "boolean" | "matches" | "metrics") {
            flags.insert(key.to_owned(), "true".to_owned());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| fail(&format!("--{key} requires a value")));
        flags.insert(key.to_owned(), value.clone());
        i += 2;
    }
    flags
}

/// Rejects flags outside the subcommand's allowlist, naming the
/// offender (and the nearest valid spelling when one is close).
fn validate_flags(cmd: &str, flags: &HashMap<String, String>) {
    let allowed = allowed_flags(cmd);
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            let hint = allowed
                .iter()
                .filter(|a| edit_distance(key, a) <= 2)
                .min_by_key(|a| edit_distance(key, a))
                .map(|a| format!(" (did you mean --{a}?)"))
                .unwrap_or_default();
            fail(&format!(
                "unknown flag --{key} for '{cmd}'{hint}; allowed: {}",
                allowed
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
}

/// Plain Levenshtein distance, small inputs only (flag names).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Option<&'a str> {
    flags.get(key).map(String::as_str)
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("--{key}: cannot parse '{v}'"))),
    }
}

fn load_graph(path: &str) -> Graph {
    let f = File::open(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
    io::read_graph_auto(BufReader::new(f)).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn load_pattern(path: &str) -> Pattern {
    let f = File::open(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
    io::read_pattern_auto(BufReader::new(f)).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn connect(flags: &HashMap<String, String>) -> DgsClient {
    let addr = get(flags, "remote").expect("caller checked --remote");
    let addr =
        ServeAddr::parse(addr).unwrap_or_else(|| fail(&format!("unparseable --remote '{addr}'")));
    DgsClient::connect(&addr).unwrap_or_else(|e| fail(&format!("cannot reach {addr}: {e}")))
}

/// Connects and, with `--session NAME`, routes the connection at that
/// named daemon session (a missing session fails typed, here).
fn connect_routed(flags: &HashMap<String, String>) -> DgsClient {
    let mut client = connect(flags);
    if let Some(name) = get(flags, "session") {
        client
            .session_route(&[name])
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    client
}

/// Rejects `--session` on a local invocation (it names a daemon
/// session, so it only means something with `--remote`).
fn reject_session_without_remote(flags: &HashMap<String, String>) {
    if flags.contains_key("session") {
        fail("--session only applies with --remote (it names a daemon session)");
    }
}

/// The session-build options shared by `generate --remote` and
/// `session --create`.
fn session_options(flags: &HashMap<String, String>) -> SessionOptions {
    let partitioner = get(flags, "partition").unwrap_or("hash");
    let compression = match get(flags, "compress") {
        None => None,
        Some("simeq") => Some(CompressionMethod::SimEq),
        Some("bisim") => Some(CompressionMethod::Bisim),
        Some(other) => fail(&format!("unknown compression method '{other}'")),
    };
    SessionOptions {
        sites: num(flags, "sites", 4),
        partitioner: WirePartitioner::parse(partitioner)
            .unwrap_or_else(|| fail(&format!("unknown partitioner '{partitioner}'"))),
        seed: num(flags, "seed", 1),
        cache_capacity: num(flags, "cache", 128),
        compression,
        compression_threshold: num(flags, "compress-threshold", 0.5),
    }
}

/// Rejects session-building flags that have no effect against a
/// daemon (its session was configured at `dgsd` startup).
fn reject_local_only(flags: &HashMap<String, String>, local_only: &[&str]) {
    for key in local_only {
        if flags.contains_key(*key) {
            fail(&format!(
                "--{key} has no effect with --remote: the daemon's session was \
                 configured when dgsd started"
            ));
        }
    }
}

fn wire_algorithm(flags: &HashMap<String, String>) -> WireAlgorithm {
    let name = get(flags, "algorithm").unwrap_or("auto");
    WireAlgorithm::parse(name).unwrap_or_else(|| fail(&format!("unknown algorithm '{name}'")))
}

/// Parses an update-ops file: `+ u v` / `- u v` lines, `#` comments,
/// blank lines as batch separators.
fn load_updates(path: &str) -> Vec<GraphDelta> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
    let mut batches = Vec::new();
    let mut current = GraphDelta::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if line.is_empty() {
            if !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (op, u, v) = (parts.next(), parts.next(), parts.next());
        let bad = || {
            fail(&format!(
                "{path}:{}: expected '+ u v' or '- u v'",
                lineno + 1
            ))
        };
        let (Some(op), Some(u), Some(v)) = (op, u, v) else {
            bad()
        };
        if parts.next().is_some() {
            // A line with extra tokens describes something this replay
            // cannot faithfully run — reject instead of guessing.
            bad()
        }
        let u = NodeId(u.parse().unwrap_or_else(|_| bad()));
        let v = NodeId(v.parse().unwrap_or_else(|_| bad()));
        match op {
            "+" => current.insert_edges.push((u, v)),
            "-" => current.delete_edges.push((u, v)),
            _ => bad(),
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// Replays update batches against the session, re-running the query
/// stream after each batch so the maintenance/invalidation behaviour
/// is visible.
fn replay_updates(engine: &SimEngine, algo: &Algorithm, qs: &[Pattern], path: &str) {
    let batches = load_updates(path);
    if batches.is_empty() {
        fail(&format!("{path}: no update ops found"));
    }
    for (i, delta) in batches.iter().enumerate() {
        let report = engine
            .apply_delta(delta)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "delta[{i}]: +{} -{} edges ({} ignored)  crossing +{}/-{}  virtuals +{}/-{}  gen {}",
            report.inserted,
            report.deleted,
            report.ignored,
            report.crossing_inserted,
            report.crossing_deleted,
            report.virtuals_created,
            report.virtuals_retired,
            report.generation
        );
        if report.maintained_entries > 0 {
            println!(
                "  maintained {} cached entr{} incrementally: {} pairs revoked, \
                 {} data msgs ({} B) of falsification traffic",
                report.maintained_entries,
                if report.maintained_entries == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.revoked_pairs,
                report.metrics.data_messages,
                report.metrics.data_bytes
            );
        }
        if report.invalidated_entries > 0 {
            println!(
                "  insertions invalidated {} cached entr{} (next queries re-plan)",
                report.invalidated_entries,
                if report.invalidated_entries == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
        }
        let batch = engine.query_batch_with(algo, qs);
        println!(
            "  re-query: {}/{} answered  PT = {:.3} ms  DS = {:.3} KB  ({} cache hits)",
            batch.succeeded(),
            qs.len(),
            batch.total.virtual_time_ms(),
            batch.total.data_kb(),
            batch.total.cache_hits
        );
        for (qi, r) in batch.reports.iter().enumerate() {
            if let Ok(r) = r {
                if let Some(note) = &r.plan.incremental {
                    println!(
                        "    [{qi}] served from the delta-maintained entry \
                         ({} deletions over {} runs, |Q(G)| = {} pairs)",
                        note.deletions_absorbed,
                        note.maintenance_runs,
                        r.answer().len()
                    );
                }
            }
        }
    }
    if let Some(stats) = engine.cache_stats() {
        println!(
            "cache after updates: {} entries, generation {}  ({} hits, {} misses, {} evictions)",
            stats.entries, stats.generation, stats.hits, stats.misses, stats.evictions
        );
    }
}

/// The remote twin of [`replay_updates`]: ships each batch as an
/// `APPLY_DELTA` frame and re-runs the query stream over the wire.
fn replay_updates_remote(client: &mut DgsClient, algo: WireAlgorithm, qs: &[Pattern], path: &str) {
    let batches = load_updates(path);
    if batches.is_empty() {
        fail(&format!("{path}: no update ops found"));
    }
    for (i, delta) in batches.iter().enumerate() {
        let report = client
            .apply_delta(delta)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "delta[{i}]: +{} -{} edges ({} ignored)  crossing +{}/-{}  virtuals +{}/-{}  gen {}",
            report.inserted,
            report.deleted,
            report.ignored,
            report.crossing_inserted,
            report.crossing_deleted,
            report.virtuals_created,
            report.virtuals_retired,
            report.generation
        );
        if report.maintained_entries > 0 {
            println!(
                "  maintained {} cached entries incrementally ({} pairs revoked)",
                report.maintained_entries, report.revoked_pairs
            );
        }
        if report.invalidated_entries > 0 {
            println!(
                "  insertions invalidated {} cached entries (next queries re-plan)",
                report.invalidated_entries
            );
        }
        let (items, total) = client
            .query_batch(qs, algo)
            .unwrap_or_else(|e| fail(&e.to_string()));
        let ok = items.iter().filter(|r| r.is_ok()).count();
        println!(
            "  re-query: {ok}/{} answered  PT = {:.3} ms  DS = {:.3} KB  ({} cache hits)",
            qs.len(),
            total.virtual_time_ms(),
            total.data_kb(),
            total.cache_hits
        );
    }
    if let Ok(Some(stats)) = client.cache_stats() {
        println!(
            "cache after updates: {} entries, generation {}  ({} hits, {} misses, {} evictions)",
            stats.entries, stats.generation, stats.hits, stats.misses, stats.evictions
        );
    }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    use dgs::graph::generate::{dag, random, tree};
    let family = get(flags, "family").unwrap_or_else(|| fail("--family required"));
    let n: usize = num(flags, "nodes", 10_000);
    let m: usize = num(flags, "edges", 5 * n);
    let labels: usize = num(flags, "labels", 15);
    let seed: u64 = num(flags, "seed", 1);
    let out = get(flags, "out");
    let remote = get(flags, "remote");
    if out.is_none() && remote.is_none() {
        fail("--out FILE or --remote ADDR required");
    }
    if remote.is_none() {
        for key in [
            "sites",
            "partition",
            "cache",
            "compress",
            "compress-threshold",
            "session",
        ] {
            if flags.contains_key(key) {
                fail(&format!(
                    "--{key} only applies with --remote (it configures the daemon's new session)"
                ));
            }
        }
    }
    let g = match family {
        "web" => random::web_like(n, m, labels, seed),
        "citation" => dag::citation_like(n, m, labels, seed),
        "tree" => tree::random_tree(n, labels, seed),
        "community" => random::community(n, m, 8, 0.05, labels, seed),
        "rmat" => {
            let scale = (n.max(2) as f64).log2().ceil() as u32;
            dgs::graph::generate::rmat::rmat(
                scale,
                m,
                labels,
                dgs::graph::generate::rmat::RmatParams::graph500(),
                seed,
            )
        }
        other => fail(&format!("unknown family '{other}'")),
    };
    if let Some(out) = out {
        let f = File::create(out).unwrap_or_else(|e| fail(&format!("cannot create {out}: {e}")));
        let w = std::io::BufWriter::new(f);
        let res = if out.ends_with(".bin") {
            io::write_graph_binary(&g, w)
        } else {
            io::write_graph(&g, w)
        };
        res.unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        println!(
            "wrote {family} graph: {} nodes, {} edges -> {out}",
            g.node_count(),
            g.edge_count()
        );
    }
    if remote.is_some() {
        let mut client = connect(flags);
        let options = session_options(flags);
        if let Some(name) = get(flags, "session") {
            // Load as (create or replace) a named session instead of
            // swapping the daemon's default one.
            let info = client
                .session_create(name, &g, &options)
                .unwrap_or_else(|e| fail(&e.to_string()));
            println!(
                "loaded {family} graph into daemon session '{}': {} nodes, {} edges over {} sites",
                info.name, info.nodes, info.edges, info.sites
            );
        } else {
            let (nodes, edges, sites) = client
                .load_graph(&g, &options)
                .unwrap_or_else(|e| fail(&e.to_string()));
            println!(
                "loaded {family} graph into daemon: {nodes} nodes, {edges} edges over {sites} sites"
            );
        }
    }
}

/// `query --remote`: the whole stream — single queries, batches,
/// `--repeat` passes and `--updates` replays — served by the daemon.
fn cmd_query_remote(flags: &HashMap<String, String>, qs: &[Pattern]) {
    reject_local_only(
        flags,
        &[
            "graph",
            "sites",
            "partition",
            "executor",
            "seed",
            "cache",
            "compress",
            "compress-threshold",
            "parallel",
        ],
    );
    let algo = wire_algorithm(flags);
    let mut client = connect_routed(flags);
    let info = client.graph_info().unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "remote graph |V|={} |E|={}  fragmentation |F|={} |Vf|={} |Ef|={}  queries: {}",
        info.nodes,
        info.edges,
        info.sites,
        info.vf,
        info.ef,
        qs.iter()
            .map(|q| format!("({},{})", q.node_count(), q.edge_count()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let repeat: usize = num(flags, "repeat", 1);
    if flags.contains_key("boolean") && flags.contains_key("updates") {
        fail("--updates needs data-selecting queries (drop --boolean)");
    }
    if flags.contains_key("boolean") {
        let q = match qs {
            [q] => q,
            _ => fail("--boolean takes a single pattern"),
        };
        let a = client
            .query_boolean(q, algo)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("plan: {}", a.plan);
        println!(
            "{}: match = {}   PT = {:.3} ms  DS = {:.3} KB",
            a.algorithm,
            a.is_match,
            a.metrics.virtual_time_ms(),
            a.metrics.data_kb()
        );
        return;
    }
    if qs.len() == 1 && repeat == 1 {
        let a = client
            .query(&qs[0], algo)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("plan: {}", a.plan);
        println!(
            "{}: match = {}  |Q(G)| = {} pairs   PT = {:.3} ms  DS = {:.3} KB  ({} data msgs)",
            a.algorithm,
            a.is_match,
            a.answer_pairs(),
            a.metrics.virtual_time_ms(),
            a.metrics.data_kb(),
            a.metrics.data_messages
        );
        if flags.contains_key("matches") {
            let rel = a.relation();
            for u in qs[0].nodes() {
                let matches = if a.is_match { rel.matches_of(u) } else { &[] };
                let shown: Vec<String> = matches.iter().take(20).map(|v| v.to_string()).collect();
                let ellipsis = if matches.len() > 20 { ", ..." } else { "" };
                println!(
                    "  u{u}: {} matches [{}{}]",
                    matches.len(),
                    shown.join(", "),
                    ellipsis
                );
            }
        }
        if let Some(path) = get(flags, "updates") {
            replay_updates_remote(&mut client, algo, qs, path);
        }
        return;
    }
    for pass in 0..repeat {
        let (items, total) = client
            .query_batch(qs, algo)
            .unwrap_or_else(|e| fail(&e.to_string()));
        if pass == 0 {
            for (i, r) in items.iter().enumerate() {
                match r {
                    Ok(a) => println!(
                        "  [{i}] {}: match = {}  |Q(G)| = {} pairs  ({} data msgs)",
                        a.algorithm,
                        a.is_match,
                        a.answer_pairs(),
                        a.metrics.data_messages
                    ),
                    Err((_, e)) => println!("  [{i}] error: {e}"),
                }
            }
        }
        let ok = items.iter().filter(|r| r.is_ok()).count();
        println!(
            "pass {}: {ok}/{} answered  PT = {:.3} ms  DS = {:.3} KB  ({} control msgs, {} cache hits)",
            pass + 1,
            qs.len(),
            total.virtual_time_ms(),
            total.data_kb(),
            total.control_messages,
            total.cache_hits
        );
    }
    if let Ok(Some(stats)) = client.cache_stats() {
        println!(
            "cache: {} entries / capacity {}  {} hits, {} misses, {} evictions",
            stats.entries, stats.capacity, stats.hits, stats.misses, stats.evictions
        );
    }
    if let Some(path) = get(flags, "updates") {
        replay_updates_remote(&mut client, algo, qs, path);
    }
}

fn cmd_query(flags: &HashMap<String, String>) {
    let pattern_arg = get(flags, "pattern").unwrap_or_else(|| fail("--pattern required"));
    let qs: Vec<Pattern> = pattern_arg.split(',').map(load_pattern).collect();
    if flags.contains_key("remote") {
        cmd_query_remote(flags, &qs);
        return;
    }
    reject_session_without_remote(flags);
    let g = load_graph(get(flags, "graph").unwrap_or_else(|| fail("--graph required")));
    let k: usize = num(flags, "sites", 4);
    let seed: u64 = num(flags, "seed", 1);
    let algo = match get(flags, "algorithm").unwrap_or("auto") {
        "auto" => Algorithm::Auto,
        "dgpm" => Algorithm::dgpm(),
        "dgpm-nopt" => Algorithm::dgpm_nopt(),
        "dgpms" => Algorithm::Dgpms,
        "dgpmd" => Algorithm::Dgpmd,
        "dgpmt" => Algorithm::Dgpmt,
        "match" => Algorithm::MatchCentral,
        "dishhk" => Algorithm::DisHhk,
        "dmes" => Algorithm::DMes,
        other => fail(&format!("unknown algorithm '{other}'")),
    };
    let assignment = match get(flags, "partition").unwrap_or("hash") {
        "hash" => hash_partition(g.node_count(), k, seed),
        "bfs" => bfs_partition(&g, k, seed),
        "ldg" => dgs::partition::ldg_partition(&g, k, 0.1, seed),
        "tree" => tree_partition(&g, k),
        other => fail(&format!("unknown partitioner '{other}'")),
    };
    let frag = Arc::new(Fragmentation::build(&g, &assignment, k));
    let executor = get(flags, "executor").unwrap_or("virtual");
    if !matches!(executor, "virtual" | "threaded" | "socket") {
        fail(&format!("unknown executor '{executor}'"));
    }
    if executor != "socket" && (flags.contains_key("workers") || flags.contains_key("attach")) {
        fail("--workers/--attach only apply with --executor socket");
    }
    // Load the fragmented graph into a session once; queries reuse the
    // cached structural facts (and, with --compress, the quotient Gc).
    let mut builder = SimEngine::builder(&g, Arc::clone(&frag));
    match executor {
        "virtual" => builder = builder.executor(ExecutorKind::Virtual),
        "threaded" => builder = builder.executor(ExecutorKind::Threaded),
        _ => {} // socket: set by build_socket below
    }
    if flags.contains_key("cache") {
        builder = builder.cache_capacity(num(flags, "cache", 128));
    }
    if let Some(method) = get(flags, "compress") {
        builder = builder.compress(match method {
            "simeq" => {
                if g.node_count() > 20_000 {
                    fail("simeq compression holds an O(|V|^2) table; use --compress bisim for graphs this large");
                }
                CompressionMethod::SimEq
            }
            "bisim" => CompressionMethod::Bisim,
            other => fail(&format!("unknown compression method '{other}'")),
        });
    }
    if flags.contains_key("compress-threshold") {
        builder = builder.compression_threshold(num(flags, "compress-threshold", 0.5));
    }
    if flags.contains_key("parallel") {
        builder = builder.batch_workers(num(flags, "parallel", 0));
    }
    let engine = if executor == "socket" {
        let cfg = if let Some(attach) = get(flags, "attach") {
            SocketConfig::attach(attach.split(',').map(str::to_owned).collect())
        } else {
            let exe = std::env::current_exe()
                .unwrap_or_else(|e| fail(&format!("cannot locate my own executable: {e}")));
            SocketConfig::spawn_local(exe, vec!["worker".into()], num(flags, "workers", 2))
        };
        let engine = builder
            .build_socket(cfg)
            .unwrap_or_else(|e| fail(&format!("socket cluster bootstrap failed: {e}")));
        let cluster = engine
            .socket_cluster()
            .expect("socket session has a cluster");
        println!(
            "socket executor: {k} sites across {} worker process(es) at {}",
            cluster.num_workers(),
            cluster.worker_addrs().join(", ")
        );
        engine
    } else {
        builder.build()
    };
    let frag = engine.fragmentation();

    println!(
        "graph |V|={} |E|={}  fragmentation |F|={k} |Vf|={} |Ef|={}  queries: {}",
        g.node_count(),
        g.edge_count(),
        frag.vf(),
        frag.ef(),
        qs.iter()
            .map(|q| format!("({},{})", q.node_count(), q.edge_count()))
            .collect::<Vec<_>>()
            .join(" ")
    );
    if let Some(note) = engine.compression_note() {
        println!(
            "compression: Gc has {} classes via {} (ratio {:.3}, {})",
            note.classes,
            note.method,
            note.ratio,
            if engine.compression_active() {
                "active — Auto answers on Gc"
            } else {
                "above threshold — answering on G"
            }
        );
    }

    let repeat: usize = num(flags, "repeat", 1);
    if flags.contains_key("boolean") && flags.contains_key("updates") {
        fail("--updates needs data-selecting queries (drop --boolean)");
    }
    if flags.contains_key("boolean") {
        let q = match qs.as_slice() {
            [q] => q,
            _ => fail("--boolean takes a single pattern"),
        };
        let report = engine
            .query_boolean_with(&algo, q)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("plan: {}", report.plan);
        println!(
            "{}: match = {}   PT = {:.3} ms  DS = {:.3} KB",
            report.algorithm,
            report.is_match,
            report.metrics.virtual_time_ms(),
            report.metrics.data_kb()
        );
        return;
    }

    if qs.len() == 1 && repeat == 1 {
        let q = &qs[0];
        let report = engine
            .query_with(&algo, q)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("plan: {}", report.plan);
        println!(
            "{}: match = {}  |Q(G)| = {} pairs   PT = {:.3} ms  DS = {:.3} KB  ({} data msgs, {} ops)",
            report.algorithm,
            report.is_match,
            report.answer().len(),
            report.metrics.virtual_time_ms(),
            report.metrics.data_kb(),
            report.metrics.data_messages,
            report.metrics.total_ops
        );
        if flags.contains_key("matches") {
            for u in q.nodes() {
                let matches = report.answer().matches_of(u);
                let shown: Vec<String> = matches.iter().take(20).map(|v| v.to_string()).collect();
                let ellipsis = if matches.len() > 20 { ", ..." } else { "" };
                println!(
                    "  u{u}: {} matches [{}{}]",
                    matches.len(),
                    shown.join(", "),
                    ellipsis
                );
            }
        }
        if let Some(path) = get(flags, "updates") {
            replay_updates(&engine, &algo, &qs, path);
        }
        return;
    }

    // Stream mode: the batch (possibly re-submitted --repeat times)
    // runs through the worker pool and the pattern-result cache.
    for pass in 0..repeat {
        let batch = engine.query_batch_with(&algo, &qs);
        if pass == 0 {
            for (i, r) in batch.reports.iter().enumerate() {
                match r {
                    Ok(r) => println!(
                        "  [{i}] {}: match = {}  |Q(G)| = {} pairs  ({} data msgs)",
                        r.algorithm,
                        r.is_match,
                        r.answer().len(),
                        r.metrics.data_messages
                    ),
                    Err(e) => println!("  [{i}] error: {e}"),
                }
            }
        }
        println!(
            "pass {}: {}/{} answered  PT = {:.3} ms  DS = {:.3} KB  ({} control msgs, {} cache hits)",
            pass + 1,
            batch.succeeded(),
            qs.len(),
            batch.total.virtual_time_ms(),
            batch.total.data_kb(),
            batch.total.control_messages,
            batch.total.cache_hits
        );
    }
    if let Some(stats) = engine.cache_stats() {
        println!(
            "cache: {} entries / capacity {}  {} hits, {} misses, {} evictions",
            stats.entries, stats.capacity, stats.hits, stats.misses, stats.evictions
        );
    }
    if let Some(path) = get(flags, "updates") {
        replay_updates(&engine, &algo, &qs, path);
    }
}

/// `dgsq convert`: translate a graph or pattern file between the text
/// and binary formats (the object kind is sniffed from the input).
fn cmd_convert(flags: &HashMap<String, String>) {
    let input = get(flags, "in").unwrap_or_else(|| fail("--in required"));
    let output = get(flags, "out").unwrap_or_else(|| fail("--out required"));
    let format = get(flags, "format").unwrap_or_else(|| fail("--format text|binary required"));
    if format != "text" && format != "binary" {
        fail(&format!("unknown format '{format}' (text|binary)"));
    }
    let bytes = std::fs::read(input).unwrap_or_else(|e| fail(&format!("cannot open {input}: {e}")));
    // Sniff the object kind: binary files carry it in the header, text
    // files in the first non-comment line.
    let is_pattern = if io::looks_binary(&bytes) {
        bytes.get(5) == Some(&b'Q')
    } else {
        String::from_utf8_lossy(&bytes)
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .is_some_and(|l| l.starts_with("pattern"))
    };
    let f = File::create(output).unwrap_or_else(|e| fail(&format!("cannot create {output}: {e}")));
    let w = std::io::BufWriter::new(f);
    let (kind, nodes, edges) = if is_pattern {
        let q =
            io::read_pattern_auto(&bytes[..]).unwrap_or_else(|e| fail(&format!("{input}: {e}")));
        let res = if format == "binary" {
            io::write_pattern_binary(&q, w)
        } else {
            io::write_pattern(&q, w)
        };
        res.unwrap_or_else(|e| fail(&format!("write {output}: {e}")));
        ("pattern", q.node_count(), q.edge_count())
    } else {
        let g = io::read_graph_auto(&bytes[..]).unwrap_or_else(|e| fail(&format!("{input}: {e}")));
        let res = if format == "binary" {
            io::write_graph_binary(&g, w)
        } else {
            io::write_graph(&g, w)
        };
        res.unwrap_or_else(|e| fail(&format!("write {output}: {e}")));
        ("graph", g.node_count(), g.edge_count())
    };
    println!("converted {kind} ({nodes} nodes, {edges} edges): {input} -> {output} [{format}]");
}

fn cmd_compress(flags: &HashMap<String, String>) {
    use dgs::sim::{compress_bisim, compress_simeq};
    if flags.contains_key("remote") {
        reject_local_only(flags, &["graph", "method", "out"]);
        let mut client = connect_routed(flags);
        match client
            .compression_info()
            .unwrap_or_else(|e| fail(&e.to_string()))
        {
            None => println!("daemon session was built without compression"),
            Some(c) => println!(
                "daemon session: Gc has {} classes via {} (ratio {:.3}, {})",
                c.classes,
                c.method,
                c.ratio,
                if c.active {
                    "active — Auto answers on Gc"
                } else {
                    "above threshold — answering on G"
                }
            ),
        }
        return;
    }
    reject_session_without_remote(flags);
    let path = get(flags, "graph").unwrap_or_else(|| fail("--graph required"));
    let g = load_graph(path);
    let method = get(flags, "method").unwrap_or("bisim");
    let c = match method {
        "simeq" => {
            if g.node_count() > 20_000 {
                fail("simeq compression holds an O(|V|^2) table; use --method bisim for graphs this large");
            }
            compress_simeq(&g)
        }
        "bisim" => compress_bisim(&g),
        other => fail(&format!("unknown method '{other}'")),
    };
    println!(
        "{method}: |G| = {} -> |Gc| = {} ({:.1}% of original; {} classes)",
        g.size(),
        c.graph.size(),
        100.0 * c.ratio(g.size()),
        c.class_count()
    );
    if let Some(out) = get(flags, "out") {
        let f = File::create(out).unwrap_or_else(|e| fail(&format!("cannot create {out}: {e}")));
        io::write_graph(&c.graph, std::io::BufWriter::new(f))
            .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        println!("wrote quotient graph -> {out}");
    }
}

fn cmd_stats(flags: &HashMap<String, String>) {
    use dgs::graph::GraphStats;
    if flags.contains_key("remote") {
        reject_local_only(flags, &["graph"]);
        let mut client = connect_routed(flags);
        if flags.contains_key("metrics") {
            let snap = client.metrics().unwrap_or_else(|e| fail(&e.to_string()));
            println!("server metrics (snapshot v{}):", snap.version);
            for (name, v) in &snap.counters {
                println!("  {name} = {v}");
            }
            for (name, v) in &snap.gauges {
                println!("  {name} = {v}");
            }
            for h in &snap.histograms {
                println!(
                    "  {}: count {}  min {}  p50 {}  p95 {}  p99 {}  max {}",
                    h.name, h.count, h.min, h.p50, h.p95, h.p99, h.max
                );
            }
            if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
                println!("  (empty — the daemon runs with --metrics off)");
            }
            return;
        }
        let info = client.graph_info().unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "remote session: |V| = {}, |E| = {}, {} labels, generation {}",
            info.nodes, info.edges, info.label_bound, info.generation
        );
        println!(
            "fragmentation: |F| = {}, |Vf| = {}, |Ef| = {}",
            info.sites, info.vf, info.ef
        );
        match client.cache_stats() {
            Ok(Some(s)) => println!(
                "cache: {} entries / capacity {}  {} hits, {} misses, {} evictions",
                s.entries, s.capacity, s.hits, s.misses, s.evictions
            ),
            Ok(None) => println!("cache: disabled"),
            Err(e) => fail(&e.to_string()),
        }
        return;
    }
    if flags.contains_key("metrics") {
        fail("--metrics needs --remote ADDR (metrics live in the daemon)");
    }
    reject_session_without_remote(flags);
    let path = get(flags, "graph").unwrap_or_else(|| fail("--graph required"));
    let g = load_graph(path);
    println!("graph {path}");
    println!("{}", GraphStats::compute(&g));
    println!(
        "top-1% hubs carry {:.1}% of edges",
        100.0 * GraphStats::top1pct_edge_share(&g)
    );
}

/// `dgsq trace`: dump the daemon's slow-query ring, newest first,
/// with the plan explanation and per-site work attached to each
/// entry.
fn cmd_trace(flags: &HashMap<String, String>) {
    if !flags.contains_key("remote") {
        fail("--remote ADDR required");
    }
    let mut client = connect(flags);
    let traces = client.trace().unwrap_or_else(|e| fail(&e.to_string()));
    if traces.is_empty() {
        println!("slow-query log is empty (is the daemon running with --slow-ms?)");
        return;
    }
    println!("{} slow request(s), newest first:", traces.len());
    for t in &traces {
        println!(
            "conn {} request {} frame 0x{:02x}  session '{}'  generation {}",
            t.conn_id, t.request_id, t.ty, t.session, t.generation
        );
        println!(
            "  total {:.3} ms = queue {:.3} + exec {:.3} + encode {:.3}",
            t.total_ns as f64 / 1e6,
            t.queue_ns as f64 / 1e6,
            t.exec_ns as f64 / 1e6,
            t.encode_ns as f64 / 1e6
        );
        if !t.algorithm.is_empty() {
            println!("  algorithm {}", t.algorithm);
        }
        if !t.plan.is_empty() {
            println!("  plan: {}", t.plan);
        }
        if !t.site_ops.is_empty() {
            let ops: Vec<String> = t.site_ops.iter().map(u64::to_string).collect();
            let msgs: Vec<String> = t.site_msgs.iter().map(u64::to_string).collect();
            println!(
                "  site ops [{}]  site msgs [{}]",
                ops.join(", "),
                msgs.join(", ")
            );
        }
    }
}

/// `dgsq session`: manage a daemon's named sessions. With no action
/// flag the hosted sessions are listed; `--create NAME --graph FILE`
/// builds and hosts (or replaces) one with the `generate --remote`
/// option set; `--drop NAME` removes one.
fn cmd_session(flags: &HashMap<String, String>) {
    if !flags.contains_key("remote") {
        fail("--remote ADDR required");
    }
    if flags.contains_key("create") && flags.contains_key("drop") {
        fail("--create and --drop are mutually exclusive");
    }
    let mut client = connect(flags);
    if let Some(name) = get(flags, "drop") {
        client
            .session_drop(name)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!("dropped session '{name}'");
        return;
    }
    if let Some(name) = get(flags, "create") {
        let path =
            get(flags, "graph").unwrap_or_else(|| fail("--graph FILE required with --create"));
        let g = load_graph(path);
        let options = session_options(flags);
        let info = client
            .session_create(name, &g, &options)
            .unwrap_or_else(|e| fail(&e.to_string()));
        println!(
            "created session '{}': |V| = {}, |E| = {} over {} sites (generation {})",
            info.name, info.nodes, info.edges, info.sites, info.generation
        );
        return;
    }
    for key in [
        "graph",
        "sites",
        "partition",
        "seed",
        "cache",
        "compress",
        "compress-threshold",
    ] {
        if flags.contains_key(key) {
            fail(&format!("--{key} only applies with --create"));
        }
    }
    let infos = client
        .session_list()
        .unwrap_or_else(|e| fail(&e.to_string()));
    println!("{} session(s) hosted:", infos.len());
    for s in infos {
        println!(
            "  {:<16} |V| = {:<9} |E| = {:<9} sites = {:<3} generation = {}",
            s.name, s.nodes, s.edges, s.sites, s.generation
        );
    }
}

/// `dgsq subscribe`: register a live match subscription (wire v4) and
/// stream diffs to stdout as other connections mutate the graph. The
/// local row mirror is kept current so the running pair count printed
/// with each diff is truthful, not just a delta tally.
fn cmd_subscribe(flags: &HashMap<String, String>) {
    use dgs::serve::SubscriptionEvent;
    if !flags.contains_key("remote") {
        fail("--remote ADDR required (subscriptions live on a dgsd daemon)");
    }
    let path = get(flags, "pattern")
        .unwrap_or_else(|| fail("PATTERN file required (positional or --pattern FILE)"));
    let q = load_pattern(path);
    let count: usize = num(flags, "count", 0);
    let algo = wire_algorithm(flags);
    let mut client = connect_routed(flags);
    let (sub_id, generation, mut rows) = client
        .subscribe(&q, algo)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let pairs: usize = rows.iter().map(Vec::len).sum();
    println!("subscription #{sub_id} at generation {generation}: snapshot has {pairs} (query node, data node) pairs");
    for (u, col) in rows.iter().enumerate() {
        let shown: Vec<String> = col.iter().take(20).map(u32::to_string).collect();
        let ellipsis = if col.len() > 20 { ", ..." } else { "" };
        println!(
            "  u{u}: {} matches [{}{}]",
            col.len(),
            shown.join(", "),
            ellipsis
        );
    }
    let mut diffs = 0usize;
    loop {
        match client.next_event() {
            Ok(SubscriptionEvent::Diff(diff)) => {
                if diff.sub_id != sub_id {
                    continue;
                }
                for &(var, node) in &diff.removed {
                    let col = &mut rows[var as usize];
                    if let Ok(i) = col.binary_search(&node) {
                        col.remove(i);
                    }
                }
                for &(var, node) in &diff.added {
                    let col = &mut rows[var as usize];
                    if let Err(i) = col.binary_search(&node) {
                        col.insert(i, node);
                    }
                }
                let pairs: usize = rows.iter().map(Vec::len).sum();
                println!(
                    "diff @ generation {}: +{} -{} (match set now {pairs} pairs)",
                    diff.generation,
                    diff.added.len(),
                    diff.removed.len()
                );
                let detail = |sign: char, changes: &[(u16, u32)]| {
                    for &(var, node) in changes.iter().take(10) {
                        println!("  {sign} (u{var}, {node})");
                    }
                    if changes.len() > 10 {
                        println!("  {sign} ... {} more", changes.len() - 10);
                    }
                };
                detail('+', &diff.added);
                detail('-', &diff.removed);
                diffs += 1;
                if count != 0 && diffs >= count {
                    client
                        .unsubscribe(sub_id)
                        .unwrap_or_else(|e| fail(&e.to_string()));
                    println!("unsubscribed after {diffs} diff(s)");
                    return;
                }
            }
            Ok(SubscriptionEvent::Event { kind, .. }) => {
                println!("subscription ended by the server: {kind:?}");
                return;
            }
            Err(e) => fail(&e.to_string()),
        }
    }
}

fn cmd_shutdown(flags: &HashMap<String, String>) {
    if !flags.contains_key("remote") {
        fail("--remote ADDR required");
    }
    let client = connect(flags);
    client.shutdown().unwrap_or_else(|e| fail(&e.to_string()));
    println!("daemon acknowledged shutdown");
}

/// `dgsq worker`: one socket-executor worker process. Binds a TCP
/// listener (ephemeral port by default), announces it on stdout —
/// `dgsq --executor socket` parses the "listening on" line — and
/// serves coordinators until one sends a shutdown.
fn cmd_worker(flags: &HashMap<String, String>) {
    let listen = get(flags, "listen").unwrap_or("127.0.0.1:0");
    if let Err(e) = dgs::core::remote::run_worker_cli("dgsq-worker", listen) {
        fail(&format!("worker failed: {e}"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") {
        usage();
    }
    // Reject an unknown command before flag validation — otherwise a
    // typo'd command reports a misleading "unknown flag ... allowed:"
    // message with an empty allowlist.
    if !matches!(
        cmd.as_str(),
        "generate"
            | "query"
            | "convert"
            | "compress"
            | "stats"
            | "trace"
            | "session"
            | "subscribe"
            | "shutdown"
            | "worker"
    ) {
        fail(&format!("unknown command '{cmd}'"));
    }
    // `subscribe` takes its pattern file positionally (`dgsq subscribe
    // q.pat --remote ...`); fold it into the flag map before the
    // allowlist check so both spellings validate identically.
    let mut rest: Vec<String> = rest.to_vec();
    if cmd == "subscribe" {
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                let positional = rest.remove(0);
                rest.insert(0, "--pattern".to_owned());
                rest.insert(1, positional);
            }
        }
    }
    let flags = parse_flags(&rest);
    validate_flags(cmd, &flags);
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "query" => cmd_query(&flags),
        "convert" => cmd_convert(&flags),
        "compress" => cmd_compress(&flags),
        "stats" => cmd_stats(&flags),
        "trace" => cmd_trace(&flags),
        "session" => cmd_session(&flags),
        "subscribe" => cmd_subscribe(&flags),
        "shutdown" => cmd_shutdown(&flags),
        "worker" => cmd_worker(&flags),
        _ => unreachable!("command validated above"),
    }
}
