//! # dgs — Distributed Graph Simulation
//!
//! A full implementation of **Fan, Wang, Wu & Deng, "Distributed Graph
//! Simulation: Impossibility and Possibility", PVLDB 7(12), 2014**:
//! graph pattern matching by graph simulation over fragmented,
//! distributed graphs, with the paper's partition-bounded algorithm
//! `dGPM`, the DAG algorithm `dGPMd`, the tree algorithm `dGPMt`, and
//! the `Match`/`disHHK`/`dMes` baselines — all runnable on a real
//! threaded cluster or a deterministic virtual-time cluster simulator.
//!
//! ## Quickstart
//!
//! Load the graph once into a [`SimEngine`] session, then serve
//! queries; [`Algorithm::Auto`] lets the planner pick the engine with
//! the best applicable bound:
//!
//! ```
//! use dgs::prelude::*;
//! use std::sync::Arc;
//!
//! // The paper's Fig. 1 social network, distributed over 3 sites.
//! let w = dgs::graph::generate::social::fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//!
//! // Build the session once: structural facts (DAG-ness, tree check,
//! // fragment connectivity, SCC condensation) are computed here, not
//! // per query.
//! let engine = SimEngine::builder(&w.graph, frag).build();
//!
//! // Query. The planner picks dGPM-family engines by precondition
//! // and records why in `report.plan`.
//! let report = engine.query(&w.pattern).unwrap();
//! assert!(report.is_match);
//! println!("plan: {}", report.plan);
//!
//! // The answer equals the centralized oracle.
//! let oracle = hhk_simulation(&w.pattern, &w.graph);
//! assert_eq!(report.relation, oracle.relation);
//!
//! // ... and ships data bounded by O(|Ef||Vq|), not O(|G|).
//! println!("PT = {:.2} ms, DS = {:.2} KB",
//!     report.metrics.virtual_time_ms(), report.metrics.data_kb());
//! ```
//!
//! Batches amortize the per-query broadcast:
//!
//! ```
//! # use dgs::prelude::*;
//! # use std::sync::Arc;
//! # let w = dgs::graph::generate::social::fig1();
//! # let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! # let engine = SimEngine::builder(&w.graph, frag).build();
//! let batch = engine.query_batch(&[w.pattern.clone(), w.pattern.clone()]);
//! assert_eq!(batch.succeeded(), 2);
//! ```
//!
//! ### Legacy one-shot API
//!
//! The pre-session entry point still works as a deprecated shim (it
//! rebuilds the engine per call and panics where the engine returns
//! typed [`DgsError`]s):
//!
//! ```
//! # #![allow(deprecated)]
//! # use dgs::prelude::*;
//! # use std::sync::Arc;
//! # let w = dgs::graph::generate::social::fig1();
//! # let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//! let report = DistributedSim::default().run(
//!     &Algorithm::dgpm(), &w.graph, &frag, &w.pattern,
//! );
//! assert!(report.is_match);
//! ```
//!
//! ## Crate map
//!
//! | facade module | crate | contents |
//! |---------------|-------|----------|
//! | [`graph`] | `dgs-graph` | graphs, patterns, generators, graph algorithms |
//! | [`partition`] | `dgs-partition` | fragments, partitioners, crossing-edge refinement |
//! | [`sim`] | `dgs-sim` | centralized simulation (naive + HHK oracle) |
//! | [`net`] | `dgs-net` | threaded & virtual-time cluster executors, PT/DS metrics |
//! | [`core`] | `dgs-core` | `SimEngine`, `dGPM`, `dGPMd`, `dGPMs`, `dGPMt`, baselines |
//! | [`serve`] | `dgs-serve` | wire protocol, `dgsd` daemon core, remote client, load generation |

pub use dgs_core as core;
pub use dgs_graph as graph;
pub use dgs_net as net;
pub use dgs_partition as partition;
pub use dgs_serve as serve;
pub use dgs_sim as sim;

/// The names most programs need.
pub mod prelude {
    #[allow(deprecated)]
    pub use dgs_core::DistributedSim;
    pub use dgs_core::{
        Algorithm, BatchReport, BooleanReport, CacheStats, CompressedNote, CompressionMethod,
        DeltaReport, DgsError, GraphDelta, GraphFacts, IncrementalNote, PatternFacts,
        PlanExplanation, Planner, RunReport, SimEngine, UpdateMsg, Var,
    };
    pub use dgs_graph::{Graph, GraphBuilder, Label, NodeId, Pattern, PatternBuilder, QNodeId};
    pub use dgs_net::{CostModel, ExecutorKind, FaultPlan, LatencyHistogram, RunMetrics};
    pub use dgs_partition::{
        bfs_partition, hash_partition, ldg_partition, tree_partition, Fragmentation,
        FragmentationStats,
    };
    pub use dgs_serve::{
        DgsClient, ServeAddr, ServeError, Server, ServerConfig, SessionOptions, WireAlgorithm,
    };
    pub use dgs_sim::{
        boolean_matches, bounded_simulation, compress_bisim, compress_simeq, dual_simulation,
        find_embedding, hashset_simulation, hhk_simulation, naive_simulation, strong_simulation,
        BoundedPattern, CompressedGraph, MatchRelation, MatchSet, SimPreorder,
    };
}

pub use prelude::*;
