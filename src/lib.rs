//! # dgs — Distributed Graph Simulation
//!
//! A full implementation of **Fan, Wang, Wu & Deng, "Distributed Graph
//! Simulation: Impossibility and Possibility", PVLDB 7(12), 2014**:
//! graph pattern matching by graph simulation over fragmented,
//! distributed graphs, with the paper's partition-bounded algorithm
//! `dGPM`, the DAG algorithm `dGPMd`, the tree algorithm `dGPMt`, and
//! the `Match`/`disHHK`/`dMes` baselines — all runnable on a real
//! threaded cluster or a deterministic virtual-time cluster simulator.
//!
//! ## Quickstart
//!
//! ```
//! use dgs::prelude::*;
//! use std::sync::Arc;
//!
//! // The paper's Fig. 1 social network, distributed over 3 sites.
//! let w = dgs::graph::generate::social::fig1();
//! let frag = Arc::new(Fragmentation::build(&w.graph, &w.assignment, 3));
//!
//! // Run the partition-bounded dGPM algorithm.
//! let report = DistributedSim::default().run(
//!     &Algorithm::dgpm(), &w.graph, &frag, &w.pattern,
//! );
//! assert!(report.is_match);
//!
//! // The answer equals the centralized oracle.
//! let oracle = hhk_simulation(&w.pattern, &w.graph);
//! assert_eq!(report.relation, oracle.relation);
//!
//! // ... and ships data bounded by O(|Ef||Vq|), not O(|G|).
//! println!("PT = {:.2} ms, DS = {:.2} KB",
//!     report.metrics.virtual_time_ms(), report.metrics.data_kb());
//! ```
//!
//! ## Crate map
//!
//! | facade module | crate | contents |
//! |---------------|-------|----------|
//! | [`graph`] | `dgs-graph` | graphs, patterns, generators, graph algorithms |
//! | [`partition`] | `dgs-partition` | fragments, partitioners, crossing-edge refinement |
//! | [`sim`] | `dgs-sim` | centralized simulation (naive + HHK oracle) |
//! | [`net`] | `dgs-net` | threaded & virtual-time cluster executors, PT/DS metrics |
//! | [`core`] | `dgs-core` | `dGPM`, `dGPMd`, `dGPMs`, `dGPMt`, baselines, Boolean equations |

pub use dgs_core as core;
pub use dgs_graph as graph;
pub use dgs_net as net;
pub use dgs_partition as partition;
pub use dgs_sim as sim;

/// The names most programs need.
pub mod prelude {
    pub use dgs_core::{Algorithm, DistributedSim, RunReport, Var};
    pub use dgs_graph::{Graph, GraphBuilder, Label, NodeId, Pattern, PatternBuilder, QNodeId};
    pub use dgs_net::{CostModel, ExecutorKind, FaultPlan, RunMetrics};
    pub use dgs_partition::{
        bfs_partition, hash_partition, ldg_partition, tree_partition, Fragmentation, FragmentationStats,
    };
    pub use dgs_sim::{
        boolean_matches, bounded_simulation, compress_bisim, compress_simeq, dual_simulation,
        find_embedding, hhk_simulation, naive_simulation, strong_simulation, BoundedPattern,
        CompressedGraph, MatchRelation, SimPreorder,
    };
}

pub use prelude::*;
