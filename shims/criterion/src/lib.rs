//! A self-contained, API-compatible subset of `criterion` for offline
//! builds: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`. Each
//! benchmark is timed with a fixed warm-up plus `sample_size` timed
//! samples and the median is printed — no statistics, plots, or
//! baseline storage.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation (recorded, reported as a suffix).
#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { id: s.into() }
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    /// Median sample duration, filled in by `iter`.
    result: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`: a warm-up call, then `samples` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / self.iters_per_sample as u32);
        }
        times.sort_unstable();
        self.result = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            result: Duration::ZERO,
            iters_per_sample: 1,
        };
        f(&mut b);
        let per = b.result.as_secs_f64();
        let rate = match &self.throughput {
            Some(Throughput::Elements(n)) if per > 0.0 => {
                format!("  ({:.3} Melem/s)", *n as f64 / per / 1e6)
            }
            Some(Throughput::Bytes(n)) if per > 0.0 => {
                format!("  ({:.3} MiB/s)", *n as f64 / per / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} median {:>12.3?}{}",
            self.name, id, b.result, rate
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into().id;
        self.run_one(id, f);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.id;
        self.run_one(id, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.run_one(String::new(), f);
        self
    }

    /// Configuration hooks accepted for compatibility (no-ops here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs trailing configuration from `criterion_main!` (no-op).
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }
}
