//! A self-contained, API-compatible subset of `crossbeam` for offline
//! builds: unbounded MPMC channels, a two-arm `select!` over `recv`
//! clauses, and `thread::scope` on top of `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Re-export so `crossbeam::channel::select!` resolves like the
    /// real crate's.
    pub use crate::select;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloneable and shareable across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (no receivers remain).
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Bounded-wait receive failure.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake any blocked receivers so they
                // can observe disconnection. The notify must happen
                // under the queue lock — otherwise it can fire in the
                // window between a receiver's senders-check and its
                // wait(), and that receiver sleeps forever.
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, res) = self
                    .inner
                    .ready
                    .wait_timeout(q, left)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.inner.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }
}

/// A two-arm `select!` over `recv(rx) -> pat => body` clauses.
///
/// Unlike a naive loop-based expansion, the arm bodies execute
/// *outside* any internal loop, so `break`/`continue` inside a body
/// bind to the caller's enclosing loop exactly as with crossbeam.
/// Readiness is polled with a short sleep between rounds — adequate
/// for the coordinator/quiescence traffic this shim serves.
#[macro_export]
macro_rules! select {
    (
        recv($rx1:expr) -> $p1:pat => $b1:block
        recv($rx2:expr) -> $p2:pat => $b2:block
    ) => {{
        let mut __which = 0u8;
        let mut __r1: Option<Result<_, $crate::channel::RecvError>> = None;
        let mut __r2: Option<Result<_, $crate::channel::RecvError>> = None;
        while __which == 0 {
            match $rx1.try_recv() {
                Ok(v) => {
                    __r1 = Some(Ok(v));
                    __which = 1;
                }
                Err($crate::channel::TryRecvError::Disconnected) => {
                    __r1 = Some(Err($crate::channel::RecvError));
                    __which = 1;
                }
                Err($crate::channel::TryRecvError::Empty) => {}
            }
            if __which == 0 {
                match $rx2.try_recv() {
                    Ok(v) => {
                        __r2 = Some(Ok(v));
                        __which = 2;
                    }
                    Err($crate::channel::TryRecvError::Disconnected) => {
                        __r2 = Some(Err($crate::channel::RecvError));
                        __which = 2;
                    }
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
            }
            if __which == 0 {
                ::std::thread::sleep(::std::time::Duration::from_micros(20));
            }
        }
        if __which == 1 {
            let $p1 = __r1.take().expect("arm 1 ready");
            $b1
        } else {
            let $p2 = __r2.take().expect("arm 2 ready");
            $b2
        }
    }};
}

pub mod thread {
    /// The argument passed to scoped-thread closures (crossbeam passes
    /// the scope itself; none of our callers use it, so this is a
    /// placeholder with the same calling convention).
    pub struct ScopeArg;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&ScopeArg) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&ScopeArg))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// returning. Panics from scoped threads propagate (std semantics),
    /// so the `Result` is always `Ok` when this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.is_empty());
    }

    #[test]
    fn disconnect_wakes_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn cross_thread_traffic() {
        let (tx, rx) = unbounded();
        let senders: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100u64 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in senders {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn select_prefers_ready_arm_and_binds_outer_loop() {
        let (tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx1.send(7).unwrap();
        let mut hits = 0;
        loop {
            crate::select! {
                recv(rx1) -> msg => {
                    if let Ok(7) = msg {
                        hits += 1;
                        break; // must bind to this outer loop
                    }
                }
                recv(rx2) -> _ => {}
            }
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn scoped_threads_borrow() {
        let data = vec![1, 2, 3];
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for &x in &data {
                let sum = &sum;
                scope.spawn(move |_| {
                    sum.fetch_add(x, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(std::sync::atomic::Ordering::SeqCst), 6);
    }
}
