//! A self-contained, API-compatible subset of `proptest` for offline
//! builds. Supports the surface this repository uses: range and
//! `any::<T>()` strategies, tuple composition, `prop_map`, the
//! `proptest!` macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` family.
//!
//! Sampling is deterministic: each test function derives its RNG from
//! a hash of its own name and the case index, so failures reproduce
//! exactly. There is no shrinking — the repo's strategies generate via
//! seeded generators, so a failing case is already small and
//! re-runnable from its printed seed tuple.

/// Runner configuration (`cases` = number of sampled inputs per test).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG behind all strategies (splitmix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for `test_name`, case `case`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_one(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_one(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_one(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == hi { return lo; }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 { return rng.next_u64() as $t; }
                let h = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(h) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample_one(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample_one(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_one(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $pat = $crate::Strategy::sample_one(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// The glob-import namespace mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        let s = (1usize..5, 0.0f64..1.0, any::<u64>());
        for _ in 0..100 {
            let (a, b, _c) = s.sample_one(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_case("m", 3);
        let s = (2usize..4).prop_map(|x| x * 10);
        for _ in 0..20 {
            let v = s.sample_one(&mut rng);
            assert!(v == 20 || v == 30);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: multiple params, trailing comma, tuple
        /// patterns, config attr.
        #[test]
        fn macro_roundtrip(
            n in 1usize..10,
            (a, b) in (0u32..5, 0u32..5).prop_map(|(x, y)| (x, y)),
            seed in any::<u64>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(a < 5 && b < 5);
            let _ = seed;
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, 0, "n = {}", n);
        }
    }
}
