//! A self-contained, API-compatible subset of the `rand` crate (0.8
//! surface) for offline builds: `SmallRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom`.
//!
//! Everything is deterministic — there is no OS entropy source — which
//! is exactly what the seeded generators in `dgs-graph` rely on. The
//! generator is xoshiro256** seeded through splitmix64.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The small, fast generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased multiply-shift (Lemire); span == 0 cannot
                // happen for non-empty ranges of types ≤ 64 bits except
                // the full u64 range, handled below.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi {
                    return lo;
                }
                // hi + 1 may overflow $t but not u64 for sub-64-bit
                // types; for u64/usize full range fall back to raw bits.
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let h = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(h) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing sampling methods.
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and element choice.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let s: f64 = r.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = rngs::SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rngs::SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
