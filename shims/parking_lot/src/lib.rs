//! A thin, API-compatible subset of `parking_lot` backed by
//! `std::sync`: non-poisoning `Mutex` / `RwLock` whose lock methods
//! return guards directly instead of `Result`s.

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error (a poisoned
/// std lock is simply recovered into its inner guard).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader–writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
